package lsnuma

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Section 5). Each benchmark runs the corresponding experiment
// and reports the paper's quantities as custom metrics:
//
//   - sim-cycles:     simulated execution time (Figures 3, 4, 6, 7 left)
//   - exec-vs-base:   normalized execution time, Baseline = 100
//   - traffic-bytes-vs-base: normalized byte traffic (middle panels)
//   - traffic-msgs-vs-base:  normalized message counts (same panels;
//     reported alongside bytes so figures are comparable with lssweep)
//   - rdmiss-vs-base: normalized global read misses (right panels)
//
// Benchmarks default to the test problem scale so `go test -bench=.`
// finishes quickly; set -scale in cmd/lsreport for paper-scale runs.
// EXPERIMENTS.md records paper-vs-measured for every artifact.

import (
	"context"
	"fmt"
	"testing"
)

// benchScale returns the problem scale used by the benchmarks.
func benchScale() Scale { return ScaleTest }

// runOnce runs one configuration, failing the benchmark on error.
func runOnce(b *testing.B, cfg Config, workload string) *Result {
	b.Helper()
	res, err := Run(cfg, workload, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// benchBehavior regenerates one behaviour figure: it benchmarks each
// protocol as a sub-benchmark and reports the normalized panels.
func benchBehavior(b *testing.B, cfg Config, workload string) {
	base, err := func() (*Result, error) {
		c := cfg
		c.Protocol = Baseline
		return Run(c, workload, benchScale())
	}()
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range Protocols() {
		b.Run(string(p), func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Protocol = p
				res = runOnce(b, c, workload)
			}
			b.ReportMetric(float64(res.ExecTime), "sim-cycles")
			b.ReportMetric(100*float64(res.ExecTime)/float64(base.ExecTime), "exec-vs-base")
			b.ReportMetric(100*float64(res.Bytes)/float64(base.Bytes), "traffic-bytes-vs-base")
			b.ReportMetric(100*float64(res.Msgs)/float64(base.Msgs), "traffic-msgs-vs-base")
			b.ReportMetric(100*float64(res.GlobalReadMisses())/float64(base.GlobalReadMisses()), "rdmiss-vs-base")
			b.ReportMetric(float64(res.EliminatedOwnership), "eliminated")
		})
	}
}

// BenchmarkFig3MP3D regenerates Figure 3 (paper: exec 100/83/77, traffic
// 100/83/76, read misses 100/105/104).
func BenchmarkFig3MP3D(b *testing.B) {
	benchBehavior(b, DefaultConfig(), "mp3d")
}

// BenchmarkFig4Cholesky regenerates Figure 4 (paper: exec 100/100/69 — AD
// removes nothing at four processors, LS cuts 30 %).
func BenchmarkFig4Cholesky(b *testing.B) {
	benchBehavior(b, DefaultConfig(), "cholesky")
}

// BenchmarkFig6LU regenerates Figure 6 (paper: exec 100/94/84, write
// stall −50 % under AD and −85 % under LS).
func BenchmarkFig6LU(b *testing.B) {
	benchBehavior(b, DefaultConfig(), "lu")
}

// BenchmarkFig7OLTP regenerates Figure 7 (paper: exec 100/95/87, traffic
// −6 %/−15 %, read misses +8 % under LS).
func BenchmarkFig7OLTP(b *testing.B) {
	benchBehavior(b, OLTPConfig(), "oltp")
}

// BenchmarkFig5CholeskyScaling regenerates Figure 5: invalidation traffic
// for Cholesky at 4, 16 and 32 processors. The paper's trend: individual
// invalidations are ~0 % of the invalidation traffic at 4 processors, 16 %
// at 16 and 29 % at 32.
func BenchmarkFig5CholeskyScaling(b *testing.B) {
	for _, nodes := range []int{4, 16, 32} {
		b.Run(fmt.Sprintf("procs-%d", nodes), func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.Nodes = nodes
				res = runOnce(b, cfg, "cholesky")
			}
			total := res.GlobalInv + res.Invalidations
			b.ReportMetric(float64(res.GlobalInv), "global-invs")
			b.ReportMetric(float64(res.Invalidations), "invalidations")
			if total > 0 {
				b.ReportMetric(100*float64(res.Invalidations)/float64(total), "inv-share-%")
			}
		})
	}
}

// BenchmarkTable2Sequences regenerates Table 2: the occurrence of
// load-store sequences (paper: 42 % of global writes) and the migratory
// share of them (paper: 47 %), split by source class.
func BenchmarkTable2Sequences(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		cfg := OLTPConfig()
		cfg.Protocol = Baseline
		res = runOnce(b, cfg, "oltp")
	}
	b.ReportMetric(100*res.Total.LoadStoreFrac, "ls-frac-%")
	b.ReportMetric(100*res.Total.MigratoryFrac, "mig-frac-%")
	b.ReportMetric(100*res.Sources[0].LoadStoreFrac, "app-ls-%")
	b.ReportMetric(100*res.Sources[1].LoadStoreFrac, "lib-ls-%")
	b.ReportMetric(100*res.Sources[2].LoadStoreFrac, "os-ls-%")
	b.ReportMetric(res.InvalidationsPerGlobalWrite, "inv-per-shared-write")
}

// BenchmarkTable3Coverage regenerates Table 3: the fraction of load-store
// (and migratory) global writes each technique removes (paper: LS
// 57.6 %/100 %, AD 31.7 %/47.6 %).
func BenchmarkTable3Coverage(b *testing.B) {
	for _, p := range []Protocol{LS, AD} {
		b.Run(string(p), func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				cfg := OLTPConfig()
				cfg.Protocol = p
				res = runOnce(b, cfg, "oltp")
			}
			b.ReportMetric(100*res.Coverage.LoadStoreCoverage, "ls-coverage-%")
			b.ReportMetric(100*res.Coverage.MigratoryCoverage, "mig-coverage-%")
		})
	}
}

// BenchmarkTable4FalseSharing regenerates Table 4: the fraction of data
// misses due to false sharing per block size (paper: 19.9 % at 16 B up to
// 48.5 % at 256 B; steady-state metric, cold misses excluded).
func BenchmarkTable4FalseSharing(b *testing.B) {
	for _, block := range []uint64{16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("block-%dB", block), func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				cfg := OLTPConfig()
				cfg.Protocol = Baseline
				cfg.BlockSize = block
				cfg.TrackFalseSharing = true
				res = runOnce(b, cfg, "oltp")
			}
			b.ReportMetric(100*res.FalseSharingSteadyFrac, "false-sharing-%")
			b.ReportMetric(100*res.FalseSharingFrac, "false-sharing-incl-cold-%")
		})
	}
}

// BenchmarkAblationDefaultTag regenerates the §5.5 default-tagging
// analysis (paper: MP3D benefits only a little, others unaffected).
func BenchmarkAblationDefaultTag(b *testing.B) {
	for _, v := range []struct {
		name    string
		variant Variant
	}{
		{"plain", Variant{}},
		{"default-tagged", Variant{DefaultTagged: true}},
	} {
		for _, p := range []Protocol{AD, LS} {
			b.Run(fmt.Sprintf("%s/%s", p, v.name), func(b *testing.B) {
				var res *Result
				for i := 0; i < b.N; i++ {
					cfg := DefaultConfig()
					cfg.Protocol = p
					cfg.Variant = v.variant
					res = runOnce(b, cfg, "mp3d")
				}
				b.ReportMetric(float64(res.ExecTime), "sim-cycles")
				b.ReportMetric(float64(res.GlobalReadMisses()), "read-misses")
			})
		}
	}
}

// BenchmarkAblationKeepHeuristic regenerates the §5.5 alternative de-tag
// heuristic (paper: no noticeable improvement).
func BenchmarkAblationKeepHeuristic(b *testing.B) {
	for _, v := range []struct {
		name    string
		variant Variant
	}{
		{"plain", Variant{}},
		{"keep-on-write-miss", Variant{KeepOnWriteMiss: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				cfg := OLTPConfig()
				cfg.Protocol = LS
				cfg.Variant = v.variant
				res = runOnce(b, cfg, "oltp")
			}
			b.ReportMetric(float64(res.ExecTime), "sim-cycles")
			b.ReportMetric(float64(res.Msgs), "messages")
			b.ReportMetric(float64(res.GlobalReadMisses()), "read-misses")
		})
	}
}

// BenchmarkAblationHysteresis regenerates the §5.5 hysteresis analysis
// (paper: tag hysteresis does not help; de-tag hysteresis dramatically
// increases read misses).
func BenchmarkAblationHysteresis(b *testing.B) {
	for _, v := range []struct {
		name    string
		variant Variant
	}{
		{"plain", Variant{}},
		{"tag-hysteresis", Variant{TagHysteresis: 2}},
		{"detag-hysteresis", Variant{DetagHysteresis: 2}},
	} {
		b.Run(v.name, func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				cfg := OLTPConfig()
				cfg.Protocol = LS
				cfg.Variant = v.variant
				res = runOnce(b, cfg, "oltp")
			}
			b.ReportMetric(float64(res.ExecTime), "sim-cycles")
			b.ReportMetric(float64(res.GlobalReadMisses()), "read-misses")
		})
	}
}

// BenchmarkVariationSweep samples the Table 1 parameter space (the
// paper's "variation analysis have been made for all applications"):
// block-size variation for MP3D under LS, using the same grid definition
// (SweepGrid) as cmd/lssweep.
func BenchmarkVariationSweep(b *testing.B) {
	grid, err := SweepGrid(SweepBlock, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, pt := range grid {
		b.Run(pt.Label, func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				cfg := pt.Config
				cfg.Protocol = LS
				res = runOnce(b, cfg, "mp3d")
			}
			b.ReportMetric(float64(res.ExecTime), "sim-cycles")
			b.ReportMetric(float64(res.Bytes), "traffic-bytes")
			b.ReportMetric(float64(res.Msgs), "traffic-msgs")
		})
	}
}

// BenchmarkParallelSweep measures the wall-clock effect of the parallel
// runner: the Figure 3 comparison (3 protocols x 4 block sizes = 12
// points) run serially vs on the worker pool. On an N-core machine the
// parallel form approaches Nx; on a single core the two are equal.
func BenchmarkParallelSweep(b *testing.B) {
	points := sweepPoints(b)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, pt := range points {
				runOnce(b, pt.Config, pt.Workload)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			results, err := RunAll(context.Background(), points, RunOptions{})
			if err != nil {
				b.Fatal(err)
			}
			_ = results
		}
	})
}

// sweepPoints builds the 12-point block-size x protocol matrix used by
// BenchmarkParallelSweep and the determinism test.
func sweepPoints(tb testing.TB) []Point {
	tb.Helper()
	grid, err := SweepGrid(SweepBlock, DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	var points []Point
	for _, g := range grid {
		for _, p := range Protocols() {
			cfg := g.Config
			cfg.Protocol = p
			points = append(points, Point{
				Label:    fmt.Sprintf("%s/%s", g.Label, p),
				Config:   cfg,
				Workload: "mp3d",
				Scale:    benchScale(),
			})
		}
	}
	return points
}

// BenchmarkSimulatorThroughput measures the simulator itself: simulated
// memory operations per wall-clock second on the MP3D workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var ops uint64
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Protocol = LS
		res := runOnce(b, cfg, "mp3d")
		ops += res.Loads + res.Stores
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "sim-ops/s")
}

// BenchmarkStaticVsDynamic compares the static software technique (EX:
// compiler-annotated exclusive loads, §2.1/§6) with the dynamic hardware
// techniques. The paper's finding: the static approach achieves high
// coverage on the scientific codes but struggles on OLTP, where the
// load-store sites are spread through application, library and OS code
// that static analysis cannot annotate.
func BenchmarkStaticVsDynamic(b *testing.B) {
	for _, workload := range []string{"cholesky", "oltp"} {
		cfg := DefaultConfig()
		if workload == "oltp" {
			cfg = OLTPConfig()
		}
		for _, p := range []Protocol{Baseline, EX, LS} {
			b.Run(fmt.Sprintf("%s/%s", workload, p), func(b *testing.B) {
				var res *Result
				for i := 0; i < b.N; i++ {
					c := cfg
					c.Protocol = p
					res = runOnce(b, c, workload)
				}
				b.ReportMetric(float64(res.ExecTime), "sim-cycles")
				b.ReportMetric(float64(res.WriteStall), "write-stall")
				b.ReportMetric(100*res.Coverage.LoadStoreCoverage, "ls-coverage-%")
			})
		}
	}
}

// BenchmarkRelaxedConsistency runs the Section 6 discussion as an
// experiment: under a write-buffer (relaxed) model the write-stall savings
// of LS shrink, but its traffic savings persist.
func BenchmarkRelaxedConsistency(b *testing.B) {
	for _, relaxed := range []bool{false, true} {
		name := "SC"
		if relaxed {
			name = "relaxed"
		}
		for _, p := range []Protocol{Baseline, LS} {
			b.Run(fmt.Sprintf("%s/%s", name, p), func(b *testing.B) {
				var res *Result
				for i := 0; i < b.N; i++ {
					cfg := DefaultConfig()
					cfg.Protocol = p
					cfg.RelaxedWrites = relaxed
					res = runOnce(b, cfg, "mp3d")
				}
				b.ReportMetric(float64(res.ExecTime), "sim-cycles")
				b.ReportMetric(float64(res.WriteStall), "write-stall")
				b.ReportMetric(float64(res.Bytes), "traffic-bytes")
			})
		}
	}
}

// BenchmarkSequenceDistance measures the read-to-write distance
// distribution of load-store sequences: the paper attributes the static
// techniques' weak OLTP coverage to loads and stores being far apart; the
// scientific kernels' sequences are tight, OLTP's are spread out.
func BenchmarkSequenceDistance(b *testing.B) {
	for _, workload := range []string{"mp3d", "oltp"} {
		b.Run(workload, func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				if workload == "oltp" {
					cfg = OLTPConfig()
				}
				cfg.Protocol = Baseline
				res = runOnce(b, cfg, workload)
			}
			var total uint64
			for _, v := range res.SequenceDistance {
				total += v
			}
			if total > 0 {
				b.ReportMetric(100*float64(res.SequenceDistance[0])/float64(total), "dist0-%")
				far := res.SequenceDistance[3] + res.SequenceDistance[4] + res.SequenceDistance[5]
				b.ReportMetric(100*float64(far)/float64(total), "dist16plus-%")
			}
		})
	}
}

// BenchmarkLockHandoff measures contended lock handoff under each
// protocol: the lock word and the data it protects are the archetypal
// migratory objects (the paper's §5.4 notes spin locks "have a potential
// for completing faster" under both AD and LS).
func BenchmarkLockHandoff(b *testing.B) {
	for _, p := range Protocols() {
		b.Run(string(p), func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.Protocol = p
				var err error
				res, err = RunPrograms(cfg, "lock-handoff", lockHandoffBuild)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.ExecTime), "sim-cycles")
			b.ReportMetric(float64(res.Msgs), "messages")
		})
	}
}
