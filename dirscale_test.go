package lsnuma

// Big-machine scaling measurements for the directory wire formats.
// `go test -run WriteDirScaleJSON -dirscalejson BENCH_7.json .` runs mp3d
// (scale=small, LS) at 32, 64, 256 and 1024 processors under the full-map,
// limited-pointer and coarse-vector directory formats, writing one JSON
// record per point: simulator throughput, wall-clock per simulated cycle
// (raw and per-CPU-normalized), the modeled directory storage per block,
// and the architectural invalidation overshoot of the compact formats.
//
// Two honesty notes on the recorded numbers. First, the formats are
// timing-transparent by design, so within one processor count the rows
// differ only in entry bits and overshoot counters — the throughput
// spread across formats at fixed P is measurement noise. Second, host
// work per simulated cycle necessarily grows with P (more processors do
// more per cycle), so the "flat cost" claim is the per-CPU-cycle column
// (wall / (sim cycles x P)), not the raw per-cycle one.

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
	"time"
)

var dirScaleJSONFlag = flag.String("dirscalejson", "", "write machine-readable directory-format scaling benchmarks to this file")

// DirScalePoint is one benchmarked configuration in the -dirscalejson
// output.
type DirScalePoint struct {
	Workload string `json:"workload"`
	Protocol string `json:"protocol"`
	Nodes    int    `json:"nodes"`
	Format   string `json:"dir_format"`

	EntryBits     int     `json:"entry_bits"`      // modeled sharer storage per directory entry
	BytesPerEntry float64 `json:"bytes_per_entry"` // entry_bits / 8

	WallNs       float64 `json:"wall_ns"`          // wall-clock of the full simulation
	SimCycles    uint64  `json:"sim_cycles"`       // simulated execution time
	SimOps       uint64  `json:"sim_ops"`          // simulated loads + stores
	SimOpsPerSec float64 `json:"sim_ops_per_sec"`  // simulator throughput
	NsPerCycle   float64 `json:"ns_per_cycle"`     // wall / sim_cycles
	NsPerCPUCyc  float64 `json:"ns_per_cpu_cycle"` // wall / (sim_cycles * nodes)

	Invalidations uint64 `json:"invalidations"` // exact protocol invalidations
	ExtraInvals   uint64 `json:"extra_invals"`  // format overshoot beyond the exact set
	Broadcasts    uint64 `json:"broadcasts"`    // limited-pointer broadcast rounds
	Overflows     uint64 `json:"overflows"`     // limited-pointer capacity overflows
}

// DirScaleReport is the top-level -dirscalejson document.
type DirScaleReport struct {
	GOOS    string          `json:"goos"`
	GOARCH  string          `json:"goarch"`
	NumCPU  int             `json:"num_cpu"`
	Scale   string          `json:"scale"`
	Results []DirScalePoint `json:"results"`
}

func TestWriteDirScaleJSON(t *testing.T) {
	if *dirScaleJSONFlag == "" {
		t.Skip("set -dirscalejson <file> to generate directory-format scaling benchmarks")
	}
	nodeCounts := []int{32, 64, 256, 1024}
	formats := []string{"full", "limited:4", "coarse:8"}
	report := DirScaleReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Scale: "small",
	}
	baseline := map[string]*DirScalePoint{} // format -> P=32 row
	for _, nodes := range nodeCounts {
		var ref *Result
		for _, format := range formats {
			cfg := DefaultConfig()
			cfg.Nodes = nodes
			cfg.Protocol = LS
			cfg.DirFormat = format
			start := time.Now()
			res, err := Run(cfg, "mp3d", ScaleSmall)
			if err != nil {
				t.Fatalf("nodes=%d dirformat=%s: %v", nodes, format, err)
			}
			wall := float64(time.Since(start).Nanoseconds())
			// The formats are differential oracles for each other: any
			// simulated-timeline divergence within one P is a bug, not a
			// measurement.
			if ref == nil {
				ref = res
			} else if res.ExecTime != ref.ExecTime || res.Invalidations != ref.Invalidations {
				t.Errorf("nodes=%d dirformat=%s diverges from full-map: %d cycles/%d invals vs %d/%d",
					nodes, format, res.ExecTime, res.Invalidations, ref.ExecTime, ref.Invalidations)
			}
			ops := res.Loads + res.Stores
			pt := DirScalePoint{
				Workload: "mp3d", Protocol: string(LS), Nodes: nodes, Format: res.Dir.Format,
				EntryBits:     res.Dir.EntryBits,
				BytesPerEntry: float64(res.Dir.EntryBits) / 8,
				WallNs:        wall,
				SimCycles:     res.ExecTime,
				SimOps:        ops,
				SimOpsPerSec:  float64(ops) / (wall / 1e9),
				NsPerCycle:    wall / float64(res.ExecTime),
				NsPerCPUCyc:   wall / (float64(res.ExecTime) * float64(nodes)),
				Invalidations: res.Invalidations,
				ExtraInvals:   res.Dir.ExtraInvals,
				Broadcasts:    res.Dir.Broadcasts,
				Overflows:     res.Dir.Overflows,
			}
			report.Results = append(report.Results, pt)
			if nodes == nodeCounts[0] {
				p := pt
				baseline[format] = &p
			}
			t.Logf("P=%-4d %-10s entry=%3db  %6.2fM sim-ops/s  %7.2f ns/cycle  %8.4f ns/cpu-cycle  extra-inv=%d",
				nodes, format, pt.EntryBits, pt.SimOpsPerSec/1e6, pt.NsPerCycle, pt.NsPerCPUCyc, pt.ExtraInvals)
		}
	}
	// The acceptance thresholds of the 1024-CPU point: compact storage at
	// most a quarter of the full map, per-CPU cycle cost within 2x of the
	// 32-CPU run.
	for _, pt := range report.Results {
		if pt.Nodes != 1024 {
			continue
		}
		if pt.Format == "coarse:8" && pt.BytesPerEntry*4 > 1024.0/8 {
			t.Errorf("coarse:8 at P=1024 costs %.1f B/entry, more than 1/4 of full-map's %d B",
				pt.BytesPerEntry, 1024/8)
		}
		if base := baseline[pt.Format]; base != nil && pt.NsPerCPUCyc > 2*base.NsPerCPUCyc {
			t.Errorf("%s per-CPU cycle cost at P=1024 (%.4f ns) exceeds 2x the P=32 cost (%.4f ns)",
				pt.Format, pt.NsPerCPUCyc, base.NsPerCPUCyc)
		}
	}
	f, err := os.Create(*dirScaleJSONFlag)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
}
