package lsnuma

// Correctness tests for the persistent result cache (PR 5): cached
// replays must be byte-identical to fresh simulations, every corruption
// mode must degrade to a miss (never an error, never a wrong Result), a
// schema-version bump must invalidate everything, and concurrent sweeps
// sharing one cache directory must stay race-free.

import (
	"bytes"
	"context"
	"os"
	"sync"
	"testing"

	"lsnuma/internal/resultcache"
)

// cachePoints builds the workload × protocol point matrix used by the
// cache tests.
func cachePoints() []Point {
	var pts []Point
	for _, w := range Workloads() {
		for _, p := range Protocols() {
			cfg := DefaultConfig()
			if w == "oltp" {
				cfg = OLTPConfig()
			}
			cfg.Protocol = p
			pts = append(pts, Point{Label: w + "/" + string(p), Config: cfg, Workload: w, Scale: ScaleTest})
		}
	}
	return pts
}

func openCache(t *testing.T, dir string) *ResultCache {
	t.Helper()
	rc, err := OpenResultCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

// TestCachedVsFreshMatrix is the headline guarantee: a cold RunAll
// populates the cache (all misses), a warm RunAll answers every point
// from it (all hits, Cached set), and every cached Result is
// byte-identical to the fresh one.
func TestCachedVsFreshMatrix(t *testing.T) {
	dir := t.TempDir()
	pts := cachePoints()

	cold := openCache(t, dir)
	fresh, err := RunAll(context.Background(), pts, RunOptions{Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Stats(); s.Hits != 0 || s.Misses != uint64(len(pts)) || s.Errors != 0 {
		t.Fatalf("cold stats = %+v, want %d misses and nothing else", s, len(pts))
	}
	for _, r := range fresh {
		if r.Cached {
			t.Fatalf("%s: cold run reported Cached", r.Label)
		}
	}

	warm := openCache(t, dir)
	cached, err := RunAll(context.Background(), pts, RunOptions{Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.Hits != uint64(len(pts)) || s.Misses != 0 || s.Errors != 0 {
		t.Fatalf("warm stats = %+v, want %d hits and nothing else", s, len(pts))
	}
	for i := range pts {
		if !cached[i].Cached {
			t.Fatalf("%s: warm run did not hit the cache", cached[i].Label)
		}
		fj, cj := exportJSON(t, fresh[i].Result), exportJSON(t, cached[i].Result)
		if !bytes.Equal(fj, cj) {
			t.Errorf("%s: cached Result differs from fresh:\nfresh:  %s\ncached: %s", pts[i].Label, fj, cj)
		}
	}
}

// TestPointKeyStability pins the content addressing: identical points key
// identically, and every input dimension — config field, workload, scale
// — perturbs the key.
func TestPointKeyStability(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = LS
	k1, err := PointKey(cfg, "mp3d", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := PointKey(cfg, "mp3d", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("PointKey not deterministic")
	}
	perturb := map[string]func() (string, error){
		"protocol": func() (string, error) {
			c := cfg
			c.Protocol = AD
			return PointKey(c, "mp3d", ScaleTest)
		},
		"block-size": func() (string, error) {
			c := cfg
			c.BlockSize *= 2
			return PointKey(c, "mp3d", ScaleTest)
		},
		"workload": func() (string, error) { return PointKey(cfg, "cholesky", ScaleTest) },
		"scale":    func() (string, error) { return PointKey(cfg, "mp3d", ScaleSmall) },
		// The scheduler knobs must land in the content hash even though
		// all schedulers produce identical Results: a cache entry records
		// the exact configuration asked for, and collapsing these fields
		// silently would make a future semantics-affecting knob unsafe.
		"scheduler": func() (string, error) {
			c := cfg
			c.Scheduler = "parallel"
			return PointKey(c, "mp3d", ScaleTest)
		},
		"shards": func() (string, error) {
			c := cfg
			c.Shards = 4
			return PointKey(c, "mp3d", ScaleTest)
		},
		"lookahead": func() (string, error) {
			c := cfg
			c.Lookahead = 100
			return PointKey(c, "mp3d", ScaleTest)
		},
	}
	for name, f := range perturb {
		k, err := f()
		if err != nil {
			t.Fatal(err)
		}
		if k == k1 {
			t.Errorf("perturbing %s did not change the key", name)
		}
	}
}

// TestCacheSchemaInvalidation simulates an engine schema bump: entries
// written under the current version must be invisible to a cache opened
// under a newer version, forcing a re-simulation.
func TestCacheSchemaInvalidation(t *testing.T) {
	dir := t.TempDir()
	pts := cachePoints()[:1]

	cur := openCache(t, dir)
	if _, err := RunAll(context.Background(), pts, RunOptions{Cache: cur}); err != nil {
		t.Fatal(err)
	}

	// A future engine generation opens the same directory under a bumped
	// version string: the old entry must not be found.
	bumped, err := resultcache.Open(dir, "e999")
	if err != nil {
		t.Fatal(err)
	}
	next := &ResultCache{c: bumped}
	if res, ok := next.lookup(pts[0]); ok || res != nil {
		t.Fatal("entry from old schema version visible after bump")
	}
	if s := next.Stats(); s.Misses != 1 {
		t.Fatalf("stats after stale lookup = %+v, want 1 miss", s)
	}

	// The current version still hits.
	if _, ok := cur.lookup(pts[0]); !ok {
		t.Fatal("entry lost under its own schema version")
	}
}

// TestCacheCorruptionIsMiss damages stored entries in every way a real
// filesystem can — truncation, garbage, valid JSON under the wrong key —
// and requires each to read as a miss that re-simulates cleanly, never an
// error and never a wrong Result.
func TestCacheCorruptionIsMiss(t *testing.T) {
	pt := cachePoints()[0]
	key, err := PointKey(pt.Config, pt.Workload, pt.Scale)
	if err != nil {
		t.Fatal(err)
	}
	corruptions := map[string]func(path string) error{
		"truncated": func(path string) error { return os.Truncate(path, 10) },
		"empty":     func(path string) error { return os.Truncate(path, 0) },
		"garbage":   func(path string) error { return os.WriteFile(path, []byte("not json {"), 0o644) },
		"wrong-key": func(path string) error {
			return os.WriteFile(path, []byte(`{"schema":"lsnuma-result-v1","key":"deadbeef","result":{}}`), 0o644)
		},
		"wrong-schema": func(path string) error {
			return os.WriteFile(path, []byte(`{"schema":"other","key":"`+key+`","result":{}}`), 0o644)
		},
		"null-result": func(path string) error {
			return os.WriteFile(path, []byte(`{"schema":"lsnuma-result-v1","key":"`+key+`","result":null}`), 0o644)
		},
	}
	for name, damage := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			rc := openCache(t, dir)
			out, err := RunAll(context.Background(), []Point{pt}, RunOptions{Cache: rc})
			if err != nil {
				t.Fatal(err)
			}
			want := exportJSON(t, out[0].Result)
			if err := damage(rc.c.Path(key)); err != nil {
				t.Fatal(err)
			}
			rc2 := openCache(t, dir)
			out2, err := RunAll(context.Background(), []Point{pt}, RunOptions{Cache: rc2})
			if err != nil {
				t.Fatalf("corrupted cache entry surfaced as an error: %v", err)
			}
			s := rc2.Stats()
			if s.Hits != 0 || s.Misses != 1 {
				t.Fatalf("stats = %+v, want the damaged entry to read as a miss", s)
			}
			if out2[0].Cached {
				t.Fatal("damaged entry served as a hit")
			}
			if got := exportJSON(t, out2[0].Result); !bytes.Equal(got, want) {
				t.Fatalf("re-simulated Result differs:\nwant: %s\ngot:  %s", want, got)
			}
		})
	}
}

// TestCacheSkipsFaultInjection: fault-injected points must never be
// served from or stored into the cache.
func TestCacheSkipsFaultInjection(t *testing.T) {
	rc := openCache(t, t.TempDir())
	pt := cachePoints()[0]
	pt.Config.Faults = "drop-inval:1"
	if res, ok := rc.lookup(pt); ok || res != nil {
		t.Fatal("fault-injected point answered from cache")
	}
	rc.store(pt, &Result{})
	if s := rc.Stats(); s.Skips != 1 {
		t.Fatalf("stats = %+v, want 1 skip", s)
	}
	pt2 := pt
	pt2.Config.Faults = ""
	if _, ok := rc.lookup(pt2); ok {
		t.Fatal("store of a fault-injected point landed in the cache")
	}
}

// TestCacheConcurrentSweeps races two full RunAll sweeps against one
// shared cache directory under -race: no errors, every Result
// byte-identical to a reference fresh run, and the second wave all hits.
func TestCacheConcurrentSweeps(t *testing.T) {
	dir := t.TempDir()
	pts := cachePoints()

	ref, err := RunAll(context.Background(), pts, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const sweeps = 4
	outs := make([][]PointResult, sweeps)
	caches := make([]*ResultCache, sweeps)
	var wg sync.WaitGroup
	errs := make([]error, sweeps)
	for i := 0; i < sweeps; i++ {
		caches[i] = openCache(t, dir)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = RunAll(context.Background(), pts, RunOptions{Cache: caches[i], Parallelism: 2})
		}(i)
	}
	wg.Wait()
	for i := 0; i < sweeps; i++ {
		if errs[i] != nil {
			t.Fatalf("sweep %d: %v", i, errs[i])
		}
		if s := caches[i].Stats(); s.Errors != 0 {
			t.Fatalf("sweep %d stats = %+v, want no cache errors", i, s)
		}
		for j := range pts {
			want := exportJSON(t, ref[j].Result)
			if got := exportJSON(t, outs[i][j].Result); !bytes.Equal(got, want) {
				t.Fatalf("sweep %d %s: Result differs from uncached reference", i, pts[j].Label)
			}
		}
	}

	// The directory is now fully warm: one more sweep must be all hits.
	warm := openCache(t, dir)
	if _, err := RunAll(context.Background(), pts, RunOptions{Cache: warm}); err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.Hits != uint64(len(pts)) || s.Misses != 0 {
		t.Fatalf("post-race warm stats = %+v, want all hits", s)
	}
}
