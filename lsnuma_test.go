package lsnuma

import (
	"testing"

	"lsnuma/internal/engine"
	"lsnuma/internal/workload/lu"
	"lsnuma/internal/workload/oltp"
)

func compareAll(t *testing.T, cfg Config, name string) map[Protocol]*Result {
	t.Helper()
	res, err := Compare(cfg, name, ScaleTest)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for p, r := range res {
		if r.ExecTime == 0 {
			t.Fatalf("%s under %v: zero execution time", name, p)
		}
		if r.Loads == 0 || r.Stores == 0 {
			t.Fatalf("%s under %v: no accesses", name, p)
		}
	}
	return res
}

func TestWorkloadsList(t *testing.T) {
	want := []string{"cholesky", "lu", "mp3d", "oltp"}
	got := Workloads()
	if len(got) != len(want) {
		t.Fatalf("Workloads() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Workloads() = %v, want %v", got, want)
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Run(DefaultConfig(), "spice", ScaleTest); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestInvalidProtocol(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = "MOESI"
	if _, err := Run(cfg, "mp3d", ScaleTest); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted unknown protocol")
	}
}

func TestConfigDefaultsMatchPaper(t *testing.T) {
	c := DefaultConfig()
	if c.Nodes != 4 || c.L1.Size != 4*1024 || c.L2.Size != 64*1024 || c.BlockSize != 16 {
		t.Errorf("DefaultConfig = %+v", c)
	}
	o := OLTPConfig()
	if o.L1.Size != 64*1024 || o.L1.Assoc != 2 || o.L2.Size != 512*1024 || o.BlockSize != 32 {
		t.Errorf("OLTPConfig = %+v", o)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
	if err := o.Validate(); err != nil {
		t.Error(err)
	}
}

// TestMP3DProtocolOrdering checks the Figure 3 shape: MP3D is migratory,
// so both AD and LS cut execution time and write-class traffic, with
// LS ≤ AD ≤ Baseline.
func TestMP3DProtocolOrdering(t *testing.T) {
	res := compareAll(t, DefaultConfig(), "mp3d")
	base, ad, ls := res[Baseline], res[AD], res[LS]

	if ad.EliminatedOwnership == 0 || ls.EliminatedOwnership == 0 {
		t.Fatalf("no eliminations: AD=%d LS=%d", ad.EliminatedOwnership, ls.EliminatedOwnership)
	}
	if !(ls.WriteStall <= ad.WriteStall && ad.WriteStall < base.WriteStall) {
		t.Errorf("write stall: LS=%d AD=%d Base=%d, want LS ≤ AD < Base",
			ls.WriteStall, ad.WriteStall, base.WriteStall)
	}
	if !(ls.ExecTime <= ad.ExecTime && ad.ExecTime < base.ExecTime) {
		t.Errorf("exec time: LS=%d AD=%d Base=%d", ls.ExecTime, ad.ExecTime, base.ExecTime)
	}
	if ls.ClassBytes[1] >= base.ClassBytes[1] {
		t.Errorf("LS write traffic %d not below baseline %d", ls.ClassBytes[1], base.ClassBytes[1])
	}
	// MP3D's load-store sequences are heavily migratory.
	if base.Total.MigratoryFrac < 0.2 {
		t.Errorf("MP3D migratory fraction = %.2f, expected substantial", base.Total.MigratoryFrac)
	}
}

// TestCholeskyLSBeatsAD checks the Figure 4 shape: at four processors
// Cholesky has almost no migratory sharing (the migratory fraction of its
// load-store sequences is near zero), so AD removes almost nothing while
// LS removes a large share of the ownership overhead.
func TestCholeskyLSBeatsAD(t *testing.T) {
	res := compareAll(t, DefaultConfig(), "cholesky")
	base, ad, ls := res[Baseline], res[AD], res[LS]

	if base.Total.MigratoryFrac > 0.1 {
		t.Errorf("cholesky migratory fraction = %.3f, want ~0 at four processors",
			base.Total.MigratoryFrac)
	}
	if ls.EliminatedOwnership == 0 {
		t.Fatal("LS eliminated nothing on cholesky")
	}
	if ls.EliminatedOwnership <= ad.EliminatedOwnership*5 {
		t.Errorf("LS eliminations (%d) not well above AD (%d)",
			ls.EliminatedOwnership, ad.EliminatedOwnership)
	}
	if ls.WriteStall >= base.WriteStall {
		t.Errorf("LS write stall %d not below baseline %d", ls.WriteStall, base.WriteStall)
	}
	// AD must stay close to baseline (the paper: unable to remove any
	// ownership overhead at four processors).
	if ad.WriteStall < base.WriteStall*90/100 {
		t.Errorf("AD write stall %d unexpectedly far below baseline %d", ad.WriteStall, base.WriteStall)
	}
	if ad.ExecTime > base.ExecTime*105/100 {
		t.Errorf("AD exec %d far above baseline %d", ad.ExecTime, base.ExecTime)
	}
}

// TestLUShape checks Figure 6: AD halves the write stall through the
// false-sharing-induced pseudo-migratory behaviour, LS removes most of
// what remains, and execution times order LS < AD < Baseline. Run at
// ScaleSmall so the matrix exceeds the L2, as at the paper's scale.
func TestLUShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ScaleSmall LU run in -short mode")
	}
	cfg := DefaultConfig()
	res, err := Compare(cfg, "lu", ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	base, ad, ls := res[Baseline], res[AD], res[LS]

	if !(ls.WriteStall < ad.WriteStall && ad.WriteStall < base.WriteStall) {
		t.Errorf("write stall: LS=%d AD=%d Base=%d, want LS < AD < Base",
			ls.WriteStall, ad.WriteStall, base.WriteStall)
	}
	if ls.WriteStall > base.WriteStall*60/100 {
		t.Errorf("LS write stall %d not well below baseline %d", ls.WriteStall, base.WriteStall)
	}
	if !(ls.ExecTime < base.ExecTime) {
		t.Errorf("LS exec %d not below baseline %d", ls.ExecTime, base.ExecTime)
	}
	// LS trades some extra read misses for the write-stall win (the paper
	// reports +1 % at its scale; the compacted kernel concentrates the
	// panel churn, so allow more).
	if ls.GlobalReadMisses() > base.GlobalReadMisses()*135/100 {
		t.Errorf("LS read misses %d vs baseline %d: blow-up", ls.GlobalReadMisses(), base.GlobalReadMisses())
	}
}

// TestLUCorrectness verifies the factorization is numerically right under
// the simulated execution (the workload is a real program, not a trace).
func TestLUCorrectness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = LS
	w := lu.NewWithConfig(lu.ConfigFor(ScaleTest), cfg.Nodes)
	_, err := RunWorkload(cfg, w, "test")
	if err != nil {
		t.Fatal(err)
	}
	if r := lu.Residual(lu.ConfigFor(ScaleTest), w.Matrix()); r > 1e-9 {
		t.Errorf("LU residual = %g", r)
	}
}

// TestOLTPShape checks Figure 7 and Tables 2/3: LS beats AD on execution
// time and traffic; a substantial fraction of global writes are load-store
// sequences, roughly half of them migratory; more than one invalidation
// per ownership acquisition.
func TestOLTPShape(t *testing.T) {
	res := compareAll(t, OLTPConfig(), "oltp")
	base, ad, ls := res[Baseline], res[AD], res[LS]

	if !(ls.ExecTime < base.ExecTime) {
		t.Errorf("LS exec %d not below baseline %d", ls.ExecTime, base.ExecTime)
	}
	if !(ad.ExecTime < base.ExecTime) {
		t.Errorf("AD exec %d not below baseline %d", ad.ExecTime, base.ExecTime)
	}
	// LS and AD land within a few percent of each other on execution time
	// in this reproduction (see EXPERIMENTS.md); the robust orderings are
	// write stall and coverage.
	if ls.ExecTime > ad.ExecTime*105/100 {
		t.Errorf("LS exec %d far above AD %d", ls.ExecTime, ad.ExecTime)
	}
	if !(ls.WriteStall < ad.WriteStall) {
		t.Errorf("LS write stall %d not below AD %d", ls.WriteStall, ad.WriteStall)
	}
	lsFrac := base.Total.LoadStoreFrac
	if lsFrac < 0.25 || lsFrac > 0.75 {
		t.Errorf("OLTP load-store fraction = %.2f, want roughly the paper's 0.42", lsFrac)
	}
	if base.Total.MigratoryFrac < 0.2 || base.Total.MigratoryFrac > 0.8 {
		t.Errorf("OLTP migratory fraction = %.2f, want roughly the paper's 0.47", base.Total.MigratoryFrac)
	}
	// Coverage: LS must cover all migratory sequences it sees and beat AD
	// on load-store coverage (Table 3: 57.6 % vs 31.7 %).
	if ls.Coverage.LoadStoreCoverage <= ad.Coverage.LoadStoreCoverage {
		t.Errorf("LS coverage %.2f not above AD %.2f",
			ls.Coverage.LoadStoreCoverage, ad.Coverage.LoadStoreCoverage)
	}
	// The paper reports ~1.4 invalidations per write to a shared block;
	// our compacted transactions have fewer concurrent readers, so the
	// ratio is lower, but writes to read-shared blocks must be common.
	if base.InvalidationsPerGlobalWrite <= 0.5 {
		t.Errorf("invalidations per shared write = %.2f, want well above 0.5 (paper: 1.4)",
			base.InvalidationsPerGlobalWrite)
	}
	// All three source classes must contribute global writes (Table 2).
	for i, src := range ls.Sources {
		if src.GlobalWrites == 0 {
			t.Errorf("source class %d produced no global writes", i)
		}
	}
}

// TestOLTPConservation checks TPC-B semantics under simulated execution:
// the per-table delta sums must agree (every transaction adds its delta to
// one account, one teller and one branch).
func TestOLTPConservation(t *testing.T) {
	cfg := OLTPConfig()
	cfg.Protocol = LS
	w := oltp.NewWithConfig(oltp.ConfigFor(ScaleTest), cfg.Nodes)
	if _, err := RunWorkload(cfg, w, "test"); err != nil {
		t.Fatal(err)
	}
	acc, tel, br := w.Balances()
	var sa, st_, sb int64
	for _, v := range acc {
		sa += v
	}
	for _, v := range tel {
		st_ += v
	}
	for _, v := range br {
		sb += v
	}
	if sa != st_ || st_ != sb {
		t.Errorf("balance sums diverged: accounts=%d tellers=%d branches=%d", sa, st_, sb)
	}
	if w.CommittedTx == 0 {
		t.Error("no transactions committed")
	}
}

// TestFalseSharingTracksBlockSize checks the Table 4 trend: the
// false-sharing fraction grows with cache block size.
func TestFalseSharingTracksBlockSize(t *testing.T) {
	frac := func(block uint64) float64 {
		cfg := OLTPConfig()
		cfg.Protocol = Baseline
		cfg.BlockSize = block
		cfg.TrackFalseSharing = true
		res, err := Run(cfg, "oltp", ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		return res.FalseSharingFrac
	}
	small := frac(16)
	big := frac(128)
	if !(big > small) {
		t.Errorf("false sharing frac: 16B=%.3f 128B=%.3f, want increasing", small, big)
	}
}

// TestDeterministicResults verifies run-to-run determinism end to end.
func TestDeterministicResults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = LS
	a, err := Run(cfg, "mp3d", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, "mp3d", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecTime != b.ExecTime || a.Msgs != b.Msgs || a.GlobalInv != b.GlobalInv {
		t.Errorf("nondeterministic results: %+v vs %+v", a, b)
	}
}

// TestRunPrograms exercises the custom-workload entry point.
func TestRunPrograms(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = LS
	res, err := RunPrograms(cfg, "custom-pingpong", func(m *engine.Machine) ([]engine.Program, error) {
		x := m.Alloc().AllocBlocks("x", 16)
		prog := func(p *engine.Proc) {
			for i := 0; i < 20; i++ {
				p.RMW(x)
				p.Compute(100)
			}
		}
		return []engine.Program{prog, prog, nil, nil}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "custom-pingpong" || res.ExecTime == 0 {
		t.Errorf("custom result = %+v", res)
	}
	if res.EliminatedOwnership == 0 {
		t.Error("LS eliminated nothing on the RMW ping-pong")
	}
}

// TestVariantsRun ensures every §5.5 ablation variant completes on a real
// workload.
func TestVariantsRun(t *testing.T) {
	for _, v := range []Variant{
		{DefaultTagged: true},
		{KeepOnWriteMiss: true},
		{TagHysteresis: 2},
		{DetagHysteresis: 2},
		{TagHysteresis: 2, DetagHysteresis: 2, DefaultTagged: true, KeepOnWriteMiss: true},
	} {
		cfg := DefaultConfig()
		cfg.Protocol = LS
		cfg.Variant = v
		if _, err := Run(cfg, "mp3d", ScaleTest); err != nil {
			t.Errorf("variant %+v: %v", v, err)
		}
	}
}

// TestEXTechnique checks the static-technique extension: near-perfect
// coverage on the fully annotated Cholesky kernel, much weaker coverage on
// OLTP where most load-store sites are not annotated — the paper's §2.1
// argument for dynamic data-centric detection.
func TestEXTechnique(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = EX
	chol, err := Run(cfg, "cholesky", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if chol.Coverage.LoadStoreCoverage < 0.9 {
		t.Errorf("EX cholesky coverage = %.2f, want near 1 (annotated sites)", chol.Coverage.LoadStoreCoverage)
	}
	ocfg := OLTPConfig()
	ocfg.Protocol = EX
	ol, err := Run(ocfg, "oltp", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	lcfg := OLTPConfig()
	lcfg.Protocol = LS
	ll, err := Run(lcfg, "oltp", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if ol.Coverage.LoadStoreCoverage >= ll.Coverage.LoadStoreCoverage {
		t.Errorf("EX OLTP coverage %.2f not below LS %.2f (static analysis should miss sites)",
			ol.Coverage.LoadStoreCoverage, ll.Coverage.LoadStoreCoverage)
	}
}

// TestRelaxedWritesShrinkLSGain: the §6 prediction — under a relaxed
// model the write-stall time LS can remove largely disappears (the write
// buffer already hides it), while LS's traffic saving remains.
func TestRelaxedWritesShrinkLSGain(t *testing.T) {
	measure := func(relaxed bool) (stallSaved uint64, trafficGain float64) {
		var wstall [2]uint64
		var bytes [2]uint64
		for i, p := range []Protocol{Baseline, LS} {
			cfg := DefaultConfig()
			cfg.Protocol = p
			cfg.RelaxedWrites = relaxed
			res, err := Run(cfg, "mp3d", ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			wstall[i] = res.WriteStall
			bytes[i] = res.Bytes
		}
		saved := uint64(0)
		if wstall[0] > wstall[1] {
			saved = wstall[0] - wstall[1]
		}
		return saved, 1 - float64(bytes[1])/float64(bytes[0])
	}
	scSaved, scTraffic := measure(false)
	rxSaved, rxTraffic := measure(true)
	if rxSaved >= scSaved/2 {
		t.Errorf("write-stall savings under relaxed (%d) not well below SC (%d)", rxSaved, scSaved)
	}
	if rxTraffic < scTraffic*0.7 {
		t.Errorf("LS traffic gain collapsed under relaxed: %.3f vs SC %.3f", rxTraffic, scTraffic)
	}
}

// lockHandoffBuild is shared by BenchmarkLockHandoff and
// TestLockHandoffProtocols: four processors take turns through a mostly
// non-contended lock and update the protected counter — the spin-lock
// case the paper's §5.4 credits with faster completion under AD and LS.
// (Under heavy contention exclusive-grant protocols suffer reader-steal
// churn on the lock word instead; that regime is exercised separately by
// the mutual-exclusion engine tests.)
func lockHandoffBuild(m *engine.Machine) ([]engine.Program, error) {
	lock := engine.NewLock(m.Alloc(), "lock")
	m.Alloc().Alloc("pad", 256, 256)
	data := engine.NewCounter(m.Alloc(), "protected")
	prog := func(p *engine.Proc) {
		for i := 0; i < 50; i++ {
			lock.Acquire(p)
			data.Add(p, 1)
			p.Compute(60)
			lock.Release(p)
			p.Compute(4000 + p.Rand().Intn(4000))
		}
	}
	return []engine.Program{prog, prog, prog, prog}, nil
}

// TestLockHandoffProtocols: the protected counter migrates with the lock;
// LS and AD both speed up the handoff relative to baseline.
func TestLockHandoffProtocols(t *testing.T) {
	exec := map[Protocol]uint64{}
	for _, p := range Protocols() {
		cfg := DefaultConfig()
		cfg.Protocol = p
		res, err := RunPrograms(cfg, "lock-handoff", lockHandoffBuild)
		if err != nil {
			t.Fatal(err)
		}
		exec[p] = res.ExecTime
		if p != Baseline && res.EliminatedOwnership == 0 {
			t.Errorf("%v eliminated nothing on the lock-handoff kernel", p)
		}
	}
	if exec[LS] >= exec[Baseline] {
		t.Errorf("LS exec %d not below baseline %d", exec[LS], exec[Baseline])
	}
}

// TestMesh2DTopology: under the mesh extension, remote traffic gets more
// expensive with machine size, and runs remain correct and deterministic.
func TestMesh2DTopology(t *testing.T) {
	run := func(mesh bool) *Result {
		cfg := DefaultConfig()
		cfg.Nodes = 16
		cfg.Protocol = LS
		cfg.Mesh2D = mesh
		res, err := Run(cfg, "cholesky", ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	p2p := run(false)
	mesh := run(true)
	// The mesh's multi-hop traversals cost more time (the spin/poll
	// access counts differ slightly because the interleaving shifts).
	if mesh.ExecTime <= p2p.ExecTime {
		t.Errorf("mesh exec %d not above point-to-point %d", mesh.ExecTime, p2p.ExecTime)
	}
	// Both complete the same factorization: the global write population
	// stays in the same ballpark.
	if mesh.GlobalWrites() < p2p.GlobalWrites()*80/100 ||
		mesh.GlobalWrites() > p2p.GlobalWrites()*120/100 {
		t.Errorf("global writes diverged: mesh %d vs p2p %d", mesh.GlobalWrites(), p2p.GlobalWrites())
	}
}
