// oltp_tuning explores how the LS protocol's OLTP win depends on the
// memory-system parameters: it sweeps the cache block size (the paper's
// Table 4 false-sharing axis) and the L2 size, printing the LS and AD
// improvements at each point — the kind of variation analysis the paper
// reports in Section 5.5.
package main

import (
	"fmt"
	"log"

	"lsnuma"
)

func main() {
	fmt.Println("OLTP: LS/AD improvement vs block size (test scale)")
	fmt.Printf("%-8s %12s %12s %14s %16s\n", "block", "AD exec", "LS exec", "LS traffic", "false sharing")
	for _, block := range []uint64{16, 32, 64, 128} {
		cfg := lsnuma.OLTPConfig()
		cfg.BlockSize = block
		cfg.TrackFalseSharing = true

		results, err := lsnuma.Compare(cfg, "oltp", lsnuma.ScaleTest)
		if err != nil {
			log.Fatal(err)
		}
		base, ad, ls := results[lsnuma.Baseline], results[lsnuma.AD], results[lsnuma.LS]
		fmt.Printf("%-8s %11.1f%% %11.1f%% %13.1f%% %15.1f%%\n",
			fmt.Sprintf("%dB", block),
			100*float64(ad.ExecTime)/float64(base.ExecTime),
			100*float64(ls.ExecTime)/float64(base.ExecTime),
			100*float64(ls.Bytes)/float64(base.Bytes),
			100*base.FalseSharingFrac)
	}

	fmt.Println("\nOLTP: LS improvement vs L2 size (32 B blocks)")
	fmt.Printf("%-8s %12s %12s %12s\n", "L2", "AD exec", "LS exec", "LS coverage")
	for _, kb := range []uint64{256, 512, 1024, 2048} {
		cfg := lsnuma.OLTPConfig()
		cfg.L2.Size = kb * 1024
		results, err := lsnuma.Compare(cfg, "oltp", lsnuma.ScaleTest)
		if err != nil {
			log.Fatal(err)
		}
		base, ad, ls := results[lsnuma.Baseline], results[lsnuma.AD], results[lsnuma.LS]
		fmt.Printf("%-8s %11.1f%% %11.1f%% %11.1f%%\n",
			fmt.Sprintf("%dkB", kb),
			100*float64(ad.ExecTime)/float64(base.ExecTime),
			100*float64(ls.ExecTime)/float64(base.ExecTime),
			100*ls.Coverage.LoadStoreCoverage)
	}
}
