// Quickstart: run the paper's headline experiment — the MP3D migratory
// workload under the Baseline, AD and LS protocols — and print the
// normalized comparison (the paper's Figure 3).
package main

import (
	"fmt"
	"log"

	"lsnuma"
)

func main() {
	cfg := lsnuma.DefaultConfig() // 4 nodes, 4 kB L1 / 64 kB L2, 16 B blocks

	results, err := lsnuma.Compare(cfg, "mp3d", lsnuma.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}

	base := results[lsnuma.Baseline]
	fmt.Println("MP3D, 4 processors (normalized to Baseline = 100):")
	fmt.Printf("%-10s %10s %10s %12s %12s\n",
		"protocol", "exec", "traffic", "write-stall", "eliminated")
	for _, p := range lsnuma.Protocols() {
		r := results[p]
		fmt.Printf("%-10s %9.1f%% %9.1f%% %11.1f%% %12d\n",
			r.Protocol,
			100*float64(r.ExecTime)/float64(base.ExecTime),
			100*float64(r.Bytes)/float64(base.Bytes),
			100*float64(r.WriteStall)/float64(base.WriteStall),
			r.EliminatedOwnership)
	}

	ls := results[lsnuma.LS]
	fmt.Printf("\nLS removed %d ownership acquisitions (%.0f%% of the load-store sequences;\n",
		ls.EliminatedOwnership, 100*ls.Coverage.LoadStoreCoverage)
	fmt.Printf("%.0f%% of the migratory ones), with %d failed predictions.\n",
		100*ls.Coverage.MigratoryCoverage, ls.FailedPredictions)
}
