// custom_workload shows how to run your own parallel program on the
// simulated multiprocessor through lsnuma.RunPrograms: a work-queue
// producer/consumer kernel whose queue entries are accessed in load-store
// sequences. The LS protocol detects them and eliminates the ownership
// acquisitions; the output compares all three protocols.
package main

import (
	"fmt"
	"log"

	"lsnuma"
	"lsnuma/internal/engine"
	"lsnuma/internal/workload"
)

const (
	items   = 400
	slots   = 64
	itemOps = 40
)

// build constructs the shared state and per-processor programs: CPU 0
// produces work items into a bounded ring; CPUs 1-3 consume them, each
// item's record being read-modified-written by its consumer.
func build(m *engine.Machine) ([]engine.Program, error) {
	alloc := m.Alloc()
	ring := workload.NewI32(alloc, "ring", slots)
	records := workload.NewRecords(alloc, "records", items, 64, 0)
	lock := engine.NewLock(alloc, "ring-lock")
	head := workload.NewI32(alloc, "cursors", 1)
	tail := workload.NewI32(alloc, "cursors", 1)
	consumed := workload.NewI32(alloc, "consumed", 1)

	producer := func(p *engine.Proc) {
		for i := 0; i < items; i++ {
			for {
				lock.Acquire(p)
				t := tail.Get(p, 0)
				h := head.Get(p, 0)
				if int(t-h) < slots {
					ring.Set(p, int(t)%slots, int32(i))
					tail.Set(p, 0, t+1)
					lock.Release(p)
					break
				}
				lock.Release(p)
				p.Compute(200)
			}
			// Initialize the item record (pure writes).
			records.WriteField(p, i, 0, 32)
			p.Compute(50)
		}
	}

	consumer := func(p *engine.Proc) {
		for {
			p.Read(consumed.Addr(0))
			if consumed.Peek(0) >= items {
				return
			}
			lock.Acquire(p)
			h := head.Get(p, 0)
			t := tail.Get(p, 0)
			if h == t {
				lock.Release(p)
				p.Compute(500 + p.Rand().Intn(500))
				continue
			}
			item := ring.Get(p, int(h)%slots)
			head.Set(p, 0, h+1)
			lock.Release(p)

			// Process the item: read-modify-write its record — the
			// load-store sequence LS optimizes.
			for op := 0; op < itemOps; op++ {
				off := uint64(op%8) * 8
				records.ReadField(p, int(item), off, 8)
				p.Compute(12)
				records.WriteField(p, int(item), off, 8)
			}
			consumed.Add(p, 0, 1)
		}
	}

	return []engine.Program{producer, consumer, consumer, consumer}, nil
}

func main() {
	fmt.Println("Custom producer/consumer workload under all three protocols:")
	fmt.Printf("%-10s %12s %14s %12s %12s\n", "protocol", "exec cycles", "global writes", "eliminated", "messages")
	var base *lsnuma.Result
	for _, proto := range lsnuma.Protocols() {
		cfg := lsnuma.DefaultConfig()
		cfg.Protocol = proto
		res, err := lsnuma.RunPrograms(cfg, "producer-consumer", build)
		if err != nil {
			log.Fatal(err)
		}
		if base == nil {
			base = res
		}
		fmt.Printf("%-10s %12d %14d %12d %12d\n",
			res.Protocol, res.ExecTime, res.GlobalWrites(), res.EliminatedOwnership, res.Msgs)
	}
}
