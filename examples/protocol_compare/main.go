// protocol_compare renders the paper's three-panel behaviour figure for
// every workload, showing where each protocol wins: MP3D (migratory,
// both help), Cholesky (no migration — only LS helps), LU (false-sharing
// pseudo-migration) and OLTP (diverse sharing — LS's super-set coverage
// pays off).
package main

import (
	"flag"
	"fmt"
	"log"

	"lsnuma"
	"lsnuma/internal/report"
)

func main() {
	scaleName := flag.String("scale", "test", "problem size: test, small, paper")
	flag.Parse()

	var scale lsnuma.Scale
	switch *scaleName {
	case "test":
		scale = lsnuma.ScaleTest
	case "small":
		scale = lsnuma.ScaleSmall
	case "paper":
		scale = lsnuma.ScalePaper
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}

	for _, w := range lsnuma.Workloads() {
		cfg := lsnuma.DefaultConfig()
		if w == "oltp" {
			cfg = lsnuma.OLTPConfig()
		}
		results, err := lsnuma.Compare(cfg, w, scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report.BehaviorFigure(w, results))
		fmt.Println()
	}
}
